// Generation-tagged graph identity and the identity-keyed CachingOracle.
//
// The cache key is (Graph::Generation(), alive-mask hash): the generation
// tag is process-wide unique per content state, so stale hits are
// impossible by construction — every mutation path (rebuilding through
// GraphBuilder, extracting a subgraph, moving a graph out) produces a
// fresh tag. The suite drives each of those paths between queries and
// uses the hit/miss counters to prove both directions: mutated content
// never hits, and — the whole point of the redesign — the O(n + m)
// content fingerprint no longer runs on the hot path, observable because
// two content-identical but independently built graphs now get distinct
// cache slots (a content fingerprint would have shared them).
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "dsd/caching_oracle.h"
#include "dsd/motif_oracle.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/subgraph.h"

namespace dsd {
namespace {

Graph TriangleChain() {
  GraphBuilder builder;
  // Two triangles sharing vertex 2, plus a pendant.
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(2, 4);
  builder.AddEdge(4, 5);
  return builder.Build();
}

// ---------------------------------------------------------------------------
// Generation tags

TEST(GraphGenerationTest, EveryConstructionGetsAFreshTag) {
  Graph a = TriangleChain();
  Graph b = TriangleChain();  // identical content, independent build
  Graph c;                    // empty
  EXPECT_NE(a.Generation(), 0u);
  EXPECT_NE(a.Generation(), b.Generation());
  EXPECT_NE(a.Generation(), c.Generation());
  EXPECT_NE(b.Generation(), c.Generation());
}

TEST(GraphGenerationTest, TagsAreMonotonic) {
  Graph a = TriangleChain();
  Graph b = TriangleChain();
  EXPECT_LT(a.Generation(), b.Generation());
}

TEST(GraphGenerationTest, CopiesShareTheTag) {
  Graph a = TriangleChain();
  Graph b = a;
  EXPECT_EQ(a.Generation(), b.Generation());
  Graph c;
  c = a;
  EXPECT_EQ(a.Generation(), c.Generation());
}

TEST(GraphGenerationTest, MoveTransfersTheTagAndRestampsTheSource) {
  Graph a = TriangleChain();
  const uint64_t tag = a.Generation();
  Graph b = std::move(a);
  EXPECT_EQ(b.Generation(), tag);
  // The moved-from graph is a valid empty graph under a fresh tag, so it
  // can never alias cache entries recorded for the content that left it.
  EXPECT_EQ(a.NumVertices(), 0u);
  EXPECT_NE(a.Generation(), tag);
  Graph c = TriangleChain();
  const uint64_t c_tag = c.Generation();
  a = std::move(c);
  EXPECT_EQ(a.Generation(), c_tag);
  EXPECT_NE(c.Generation(), c_tag);
  EXPECT_EQ(c.NumVertices(), 0u);
}

TEST(GraphGenerationTest, SubgraphExtractionGetsItsOwnTag) {
  Graph g = TriangleChain();
  std::vector<VertexId> vertices = {0, 1, 2};
  Subgraph first = InducedSubgraph(g, vertices);
  Subgraph second = InducedSubgraph(g, vertices);
  EXPECT_NE(first.graph.Generation(), g.Generation());
  EXPECT_NE(first.graph.Generation(), second.graph.Generation());
}

// ---------------------------------------------------------------------------
// Identity-keyed caching: staleness is impossible

TEST(CachingGenerationTest, BuilderRebuildBetweenQueriesCannotServeStale) {
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  CliqueOracle reference(3);

  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  Graph before = builder.Build();
  EXPECT_EQ(oracle.Degrees(before, {}), reference.Degrees(before, {}));
  EXPECT_EQ(oracle.CountInstances(before, {}), 1u);

  // "Mutate": rebuild with one more triangle and query the new graph.
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(0, 3);
  Graph after = builder.Build();
  EXPECT_EQ(oracle.Degrees(after, {}), reference.Degrees(after, {}));
  EXPECT_EQ(oracle.CountInstances(after, {}), 2u);

  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.degree_hits, 0u);
  EXPECT_EQ(stats.degree_misses, 2u);
  EXPECT_EQ(stats.count_hits, 0u);
  EXPECT_EQ(stats.count_misses, 2u);
}

TEST(CachingGenerationTest, SubgraphQueriesGetTheirOwnSlots) {
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  CliqueOracle reference(3);
  Graph g = TriangleChain();
  EXPECT_EQ(oracle.CountInstances(g, {}), reference.CountInstances(g, {}));

  std::vector<VertexId> vertices = {0, 1, 2, 3};
  Subgraph sub = InducedSubgraph(g, vertices);
  // The extracted subgraph is a different content state: its query must
  // miss (and answer for ITS content), not reuse the parent's entry.
  EXPECT_EQ(oracle.CountInstances(sub.graph, {}),
            reference.CountInstances(sub.graph, {}));
  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.count_hits, 0u);
  EXPECT_EQ(stats.count_misses, 2u);
}

TEST(CachingGenerationTest, AliveMaskMutationMissesAndRestoredMaskHits) {
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  CliqueOracle reference(3);
  Graph g = gen::PlantedClique(60, 0.1, 8, 11);

  std::vector<char> alive(g.NumVertices(), 1);
  alive[3] = 0;
  const std::vector<uint64_t> masked = oracle.Degrees(g, alive);
  EXPECT_EQ(masked, reference.Degrees(g, alive));

  alive[7] = 0;  // mutate the mask between queries
  EXPECT_EQ(oracle.Degrees(g, alive), reference.Degrees(g, alive));
  EXPECT_EQ(oracle.cache_stats().degree_hits, 0u);
  EXPECT_EQ(oracle.cache_stats().degree_misses, 2u);

  alive[7] = 1;  // restore: identical (graph, mask) again
  EXPECT_EQ(oracle.Degrees(g, alive), masked);
  EXPECT_EQ(oracle.cache_stats().degree_hits, 1u);
}

TEST(CachingGenerationTest, MovedFromGraphCannotAliasItsOldEntries) {
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  Graph g = TriangleChain();
  const uint64_t count = oracle.CountInstances(g, {});
  EXPECT_EQ(count, 2u);

  Graph stolen = std::move(g);
  // The content (and its tag) moved: the new owner hits the warm entry.
  EXPECT_EQ(oracle.CountInstances(stolen, {}), count);
  EXPECT_EQ(oracle.cache_stats().count_hits, 1u);
  // The moved-from graph is empty under a fresh tag: its query misses and
  // answers for the empty content, never the departed triangles.
  EXPECT_EQ(oracle.CountInstances(g, {}), 0u);
  EXPECT_EQ(oracle.cache_stats().count_hits, 1u);
  EXPECT_EQ(oracle.cache_stats().count_misses, 2u);
}

// ---------------------------------------------------------------------------
// The fingerprint is gone from the hot path

TEST(CachingGenerationTest, ContentTwinsNoLongerShareEntries) {
  // Under the old content fingerprint two byte-identical graphs hashed to
  // the same key, so the twin's first query HIT. Identity keying must make
  // it miss — the observable proof that no content hashing runs per query.
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  Graph a = TriangleChain();
  Graph b = TriangleChain();
  EXPECT_EQ(oracle.CountInstances(a, {}), oracle.CountInstances(b, {}));
  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.count_hits, 0u);
  EXPECT_EQ(stats.count_misses, 2u);
}

TEST(CachingGenerationTest, CopiedGraphSharesEntriesByTag) {
  // The flip side: a copy carries the tag, so it may (correctly) reuse the
  // original's entries without any hashing of its content.
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  Graph a = TriangleChain();
  const uint64_t count = oracle.CountInstances(a, {});
  Graph b = a;
  EXPECT_EQ(oracle.CountInstances(b, {}), count);
  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.count_hits, 1u);
  EXPECT_EQ(stats.count_misses, 1u);
}

TEST(CachingGenerationTest, AllAliveMaskCanonicalisesToEmptySpan) {
  // An all-ones mask answers exactly like the empty span; the key
  // canonicalisation keeps them one entry (a hit, not a second miss).
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  Graph g = TriangleChain();
  const uint64_t count = oracle.CountInstances(g, {});
  std::vector<char> all_alive(g.NumVertices(), 1);
  EXPECT_EQ(oracle.CountInstances(g, all_alive), count);
  // Any nonzero char spells "alive": same canonical key again.
  std::vector<char> all_alive_2s(g.NumVertices(), 2);
  EXPECT_EQ(oracle.CountInstances(g, all_alive_2s), count);
  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.count_hits, 2u);
  EXPECT_EQ(stats.count_misses, 1u);
}

}  // namespace
}  // namespace dsd
