// Generation-tagged graph identity and the identity-keyed CachingOracle.
//
// The cache key is (Graph::Generation(), alive-mask hash): the generation
// tag is process-wide unique per content state, so stale hits are
// impossible by construction — every mutation path (rebuilding through
// GraphBuilder, extracting a subgraph, moving a graph out) produces a
// fresh tag. The suite drives each of those paths between queries and
// uses the hit/miss counters to prove both directions: mutated content
// never hits, and — the whole point of the redesign — the O(n + m)
// content fingerprint no longer runs on the hot path, observable because
// two content-identical but independently built graphs now get distinct
// cache slots (a content fingerprint would have shared them).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "dsd/caching_oracle.h"
#include "dsd/motif_oracle.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/subgraph.h"

namespace dsd {
namespace {

Graph TriangleChain() {
  GraphBuilder builder;
  // Two triangles sharing vertex 2, plus a pendant.
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(2, 4);
  builder.AddEdge(4, 5);
  return builder.Build();
}

// ---------------------------------------------------------------------------
// Generation tags

TEST(GraphGenerationTest, EveryConstructionGetsAFreshTag) {
  Graph a = TriangleChain();
  Graph b = TriangleChain();  // identical content, independent build
  Graph c;                    // empty
  EXPECT_NE(a.Generation(), 0u);
  EXPECT_NE(a.Generation(), b.Generation());
  EXPECT_NE(a.Generation(), c.Generation());
  EXPECT_NE(b.Generation(), c.Generation());
}

TEST(GraphGenerationTest, TagsAreMonotonic) {
  Graph a = TriangleChain();
  Graph b = TriangleChain();
  EXPECT_LT(a.Generation(), b.Generation());
}

TEST(GraphGenerationTest, CopiesShareTheTag) {
  Graph a = TriangleChain();
  Graph b = a;
  EXPECT_EQ(a.Generation(), b.Generation());
  Graph c;
  c = a;
  EXPECT_EQ(a.Generation(), c.Generation());
}

TEST(GraphGenerationTest, MoveTransfersTheTagAndRestampsTheSource) {
  Graph a = TriangleChain();
  const uint64_t tag = a.Generation();
  Graph b = std::move(a);
  EXPECT_EQ(b.Generation(), tag);
  // The moved-from graph is a valid empty graph under a fresh tag, so it
  // can never alias cache entries recorded for the content that left it.
  EXPECT_EQ(a.NumVertices(), 0u);
  EXPECT_NE(a.Generation(), tag);
  Graph c = TriangleChain();
  const uint64_t c_tag = c.Generation();
  a = std::move(c);
  EXPECT_EQ(a.Generation(), c_tag);
  EXPECT_NE(c.Generation(), c_tag);
  EXPECT_EQ(c.NumVertices(), 0u);
}

TEST(GraphGenerationTest, SubgraphExtractionGetsItsOwnTag) {
  Graph g = TriangleChain();
  std::vector<VertexId> vertices = {0, 1, 2};
  Subgraph first = InducedSubgraph(g, vertices);
  Subgraph second = InducedSubgraph(g, vertices);
  EXPECT_NE(first.graph.Generation(), g.Generation());
  EXPECT_NE(first.graph.Generation(), second.graph.Generation());
}

// ---------------------------------------------------------------------------
// Identity-keyed caching: staleness is impossible

TEST(CachingGenerationTest, BuilderRebuildBetweenQueriesCannotServeStale) {
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  CliqueOracle reference(3);

  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  Graph before = builder.Build();
  EXPECT_EQ(oracle.Degrees(before, {}), reference.Degrees(before, {}));
  EXPECT_EQ(oracle.CountInstances(before, {}), 1u);

  // "Mutate": rebuild with one more triangle and query the new graph.
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(0, 3);
  Graph after = builder.Build();
  EXPECT_EQ(oracle.Degrees(after, {}), reference.Degrees(after, {}));
  EXPECT_EQ(oracle.CountInstances(after, {}), 2u);

  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.degree_hits, 0u);
  EXPECT_EQ(stats.degree_misses, 2u);
  EXPECT_EQ(stats.count_hits, 0u);
  EXPECT_EQ(stats.count_misses, 2u);
}

TEST(CachingGenerationTest, SubgraphQueriesGetTheirOwnSlots) {
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  CliqueOracle reference(3);
  Graph g = TriangleChain();
  EXPECT_EQ(oracle.CountInstances(g, {}), reference.CountInstances(g, {}));

  std::vector<VertexId> vertices = {0, 1, 2, 3};
  Subgraph sub = InducedSubgraph(g, vertices);
  // The extracted subgraph is a different content state: its query must
  // miss (and answer for ITS content), not reuse the parent's entry.
  EXPECT_EQ(oracle.CountInstances(sub.graph, {}),
            reference.CountInstances(sub.graph, {}));
  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.count_hits, 0u);
  EXPECT_EQ(stats.count_misses, 2u);
}

TEST(CachingGenerationTest, AliveMaskMutationMissesAndRestoredMaskHits) {
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  CliqueOracle reference(3);
  Graph g = gen::PlantedClique(60, 0.1, 8, 11);

  std::vector<char> alive(g.NumVertices(), 1);
  alive[3] = 0;
  const std::vector<uint64_t> masked = oracle.Degrees(g, alive);
  EXPECT_EQ(masked, reference.Degrees(g, alive));

  alive[7] = 0;  // mutate the mask between queries
  EXPECT_EQ(oracle.Degrees(g, alive), reference.Degrees(g, alive));
  EXPECT_EQ(oracle.cache_stats().degree_hits, 0u);
  EXPECT_EQ(oracle.cache_stats().degree_misses, 2u);

  alive[7] = 1;  // restore: identical (graph, mask) again
  EXPECT_EQ(oracle.Degrees(g, alive), masked);
  EXPECT_EQ(oracle.cache_stats().degree_hits, 1u);
}

TEST(CachingGenerationTest, MovedFromGraphCannotAliasItsOldEntries) {
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  Graph g = TriangleChain();
  const uint64_t count = oracle.CountInstances(g, {});
  EXPECT_EQ(count, 2u);

  Graph stolen = std::move(g);
  // The content (and its tag) moved: the new owner hits the warm entry.
  EXPECT_EQ(oracle.CountInstances(stolen, {}), count);
  EXPECT_EQ(oracle.cache_stats().count_hits, 1u);
  // The moved-from graph is empty under a fresh tag: its query misses and
  // answers for the empty content, never the departed triangles.
  EXPECT_EQ(oracle.CountInstances(g, {}), 0u);
  EXPECT_EQ(oracle.cache_stats().count_hits, 1u);
  EXPECT_EQ(oracle.cache_stats().count_misses, 2u);
}

// ---------------------------------------------------------------------------
// The fingerprint is gone from the hot path

TEST(CachingGenerationTest, ContentTwinsNoLongerShareEntries) {
  // Under the old content fingerprint two byte-identical graphs hashed to
  // the same key, so the twin's first query HIT. Identity keying must make
  // it miss — the observable proof that no content hashing runs per query.
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  Graph a = TriangleChain();
  Graph b = TriangleChain();
  EXPECT_EQ(oracle.CountInstances(a, {}), oracle.CountInstances(b, {}));
  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.count_hits, 0u);
  EXPECT_EQ(stats.count_misses, 2u);
}

TEST(CachingGenerationTest, CopiedGraphSharesEntriesByTag) {
  // The flip side: a copy carries the tag, so it may (correctly) reuse the
  // original's entries without any hashing of its content.
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  Graph a = TriangleChain();
  const uint64_t count = oracle.CountInstances(a, {});
  Graph b = a;
  EXPECT_EQ(oracle.CountInstances(b, {}), count);
  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.count_hits, 1u);
  EXPECT_EQ(stats.count_misses, 1u);
}

TEST(CachingGenerationTest, AllAliveMaskCanonicalisesToEmptySpan) {
  // An all-ones mask answers exactly like the empty span; the key
  // canonicalisation keeps them one entry (a hit, not a second miss).
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  Graph g = TriangleChain();
  const uint64_t count = oracle.CountInstances(g, {});
  std::vector<char> all_alive(g.NumVertices(), 1);
  EXPECT_EQ(oracle.CountInstances(g, all_alive), count);
  // Any nonzero char spells "alive": same canonical key again.
  std::vector<char> all_alive_2s(g.NumVertices(), 2);
  EXPECT_EQ(oracle.CountInstances(g, all_alive_2s), count);
  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.count_hits, 2u);
  EXPECT_EQ(stats.count_misses, 1u);
}

// ---------------------------------------------------------------------------
// Concurrent sharing (the dsd_server usage: one CachingOracle per resident
// graph, hammered by every in-flight request). This suite carries the unit
// label, so CI's TSan job races it: a data race in the sharded maps, the
// atomic hit/miss counters, or the eviction path surfaces here.

TEST(CachingConcurrencyTest, ConcurrentMixedQueriesAreRaceFreeAndCoherent) {
  CachingOracle oracle(std::make_unique<CliqueOracle>(3));
  CliqueOracle reference(3);
  Graph g = gen::PlantedClique(120, 0.05, 8, 21);

  // Distinct masks -> distinct keys spread across shards; repeated rounds
  // -> guaranteed hit traffic concurrent with insertions.
  const unsigned kThreads = 8;
  const int kRounds = 6;
  std::vector<std::vector<char>> masks;
  for (unsigned m = 0; m < kThreads; ++m) {
    std::vector<char> mask(g.NumVertices(), 1);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if ((v + m) % (m + 2) == 0) mask[v] = 0;
    }
    masks.push_back(std::move(mask));
  }

  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int round = 0; round < kRounds; ++round) {
        // Each worker walks every mask, offset by its index, mixing
        // first-miss insertions with hits on entries other workers filled,
        // plus stats reads racing both.
        const std::vector<char>& mask = masks[(t + round) % kThreads];
        std::vector<uint64_t> degrees = oracle.Degrees(g, mask);
        uint64_t count = oracle.CountInstances(g, mask);
        checksum.fetch_add(count + degrees[0], std::memory_order_relaxed);
        (void)oracle.cache_stats();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Quiesced: counters must account for every call, and every cached
  // answer must equal the uncached reference.
  CachingOracle::CacheStats stats = oracle.cache_stats();
  EXPECT_EQ(stats.degree_hits + stats.degree_misses,
            uint64_t{kThreads} * kRounds);
  EXPECT_EQ(stats.count_hits + stats.count_misses,
            uint64_t{kThreads} * kRounds);
  // Each of the kThreads distinct masks misses at least once.
  EXPECT_GE(stats.degree_misses, uint64_t{kThreads});
  EXPECT_GE(stats.degree_hits, 1u);
  for (const std::vector<char>& mask : masks) {
    EXPECT_EQ(oracle.Degrees(g, mask), reference.Degrees(g, mask));
    EXPECT_EQ(oracle.CountInstances(g, mask),
              reference.CountInstances(g, mask));
  }
}

TEST(CachingConcurrencyTest, ConcurrentEvictionChurnIsRaceFree) {
  // A byte budget small enough that insertions evict constantly: the
  // clear-then-insert path races lookups and other insertions.
  CachingOracle oracle(std::make_unique<CliqueOracle>(3),
                       /*max_cached_bytes=*/256);
  Graph g = gen::PlantedClique(80, 0.05, 6, 22);

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 8; ++t) {
    workers.emplace_back([&, t]() {
      std::vector<char> mask(g.NumVertices(), 1);
      for (int round = 0; round < 12; ++round) {
        mask[(t * 13 + round) % g.NumVertices()] ^= 1;
        std::vector<uint64_t> degrees = oracle.Degrees(g, mask);
        ASSERT_EQ(degrees.size(), g.NumVertices());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  CliqueOracle reference(3);
  EXPECT_EQ(oracle.Degrees(g, {}), reference.Degrees(g, {}));
}

}  // namespace
}  // namespace dsd
