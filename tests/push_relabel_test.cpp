// Tests for flow/push_relabel: known instances plus randomized equivalence
// with the Dinic solver (values and cut capacities).
#include <gtest/gtest.h>

#include <algorithm>

#include "flow/max_flow.h"
#include "flow/push_relabel.h"
#include "util/random.h"

namespace dsd {
namespace {

TEST(PushRelabel, SingleEdge) {
  PushRelabelNetwork net(2);
  net.AddArc(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 1), 5.0);
}

TEST(PushRelabel, SeriesParallel) {
  PushRelabelNetwork net(4);
  net.AddArc(0, 1, 2.0);
  net.AddArc(1, 3, 1.0);
  net.AddArc(0, 2, 3.0);
  net.AddArc(2, 3, 4.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 3), 4.0);
}

TEST(PushRelabel, ClassicCLRSExample) {
  PushRelabelNetwork net(6);
  net.AddArc(0, 1, 16);
  net.AddArc(0, 2, 13);
  net.AddArc(1, 2, 10);
  net.AddArc(2, 1, 4);
  net.AddArc(1, 3, 12);
  net.AddArc(3, 2, 9);
  net.AddArc(2, 4, 14);
  net.AddArc(4, 3, 7);
  net.AddArc(3, 5, 20);
  net.AddArc(4, 5, 4);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 5), 23.0);
}

TEST(PushRelabel, Disconnected) {
  PushRelabelNetwork net(4);
  net.AddArc(0, 1, 10);
  net.AddArc(2, 3, 10);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 3), 0.0);
}

TEST(PushRelabel, SetCapacityRetunes) {
  PushRelabelNetwork net(3);
  auto a = net.AddArc(0, 1, 1.0);
  net.AddArc(1, 2, 10.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 2), 1.0);
  net.SetCapacity(a, 7.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 2), 7.0);
}

TEST(PushRelabel, MinCutSeparates) {
  PushRelabelNetwork net(5);
  net.AddArc(0, 1, 5);
  net.AddArc(1, 2, 1);
  net.AddArc(2, 3, 5);
  net.AddArc(3, 4, 5);
  net.MaxFlow(0, 4);
  auto side = net.MinCutSourceSide(0);
  EXPECT_TRUE(std::find(side.begin(), side.end(), 0u) != side.end());
  EXPECT_TRUE(std::find(side.begin(), side.end(), 1u) != side.end());
  EXPECT_TRUE(std::find(side.begin(), side.end(), 4u) == side.end());
}

class PushRelabelVsDinicTest : public ::testing::TestWithParam<int> {};

TEST_P(PushRelabelVsDinicTest, FlowValuesAgree) {
  Rng rng(GetParam() * 7919 + 13);
  const int n = 2 + static_cast<int>(rng.NextBounded(14));
  MaxFlowNetwork dinic(n);
  PushRelabelNetwork pr(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && rng.NextBernoulli(0.35)) {
        double c = static_cast<double>(rng.NextBounded(12));
        dinic.AddArc(u, v, c);
        pr.AddArc(u, v, c);
      }
    }
  }
  double a = dinic.MaxFlow(0, n - 1);
  double b = pr.MaxFlow(0, n - 1);
  EXPECT_NEAR(a, b, 1e-6) << "n=" << n;
}

TEST_P(PushRelabelVsDinicTest, CutsAreBothMinimum) {
  // The cuts may differ as sets; both must have capacity equal to the flow.
  Rng rng(GetParam() * 104729 + 7);
  const int n = 3 + static_cast<int>(rng.NextBounded(10));
  std::vector<std::tuple<int, int, double>> arcs;
  MaxFlowNetwork dinic(n);
  PushRelabelNetwork pr(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && rng.NextBernoulli(0.4)) {
        double c = 1.0 + static_cast<double>(rng.NextBounded(9));
        arcs.emplace_back(u, v, c);
        dinic.AddArc(u, v, c);
        pr.AddArc(u, v, c);
      }
    }
  }
  double flow = pr.MaxFlow(0, n - 1);
  auto side = pr.MinCutSourceSide(0);
  std::vector<char> in_side(n, 0);
  for (auto v : side) in_side[v] = 1;
  ASSERT_TRUE(in_side[0]);
  ASSERT_FALSE(in_side[n - 1]);
  double cut = 0;
  for (auto [u, v, c] : arcs) {
    if (in_side[u] && !in_side[v]) cut += c;
  }
  EXPECT_NEAR(cut, flow, 1e-6);
  EXPECT_NEAR(dinic.MaxFlow(0, n - 1), flow, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Random, PushRelabelVsDinicTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace dsd
