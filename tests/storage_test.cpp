// Tests for src/storage/: the .dsdg binary container (write, mmap/read
// open, corruption rejection), the streaming edge-list ingester (format
// tolerance, typed line-numbered errors, id remapping), and the dataset
// registry (spec validation, manifest parsing, materialize-once caching).
//
// The contract under test everywhere: a graph that travels through the
// storage layer comes back BITWISE identical (same CSR arrays), damaged
// files are rejected with a typed Status rather than misread, and every
// load path hands out a fresh generation tag so CachingOracle keys can
// never alias across file opens.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "storage/dataset_registry.h"
#include "storage/format.h"
#include "storage/graph_store.h"
#include "storage/ingest.h"

namespace dsd::storage {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/dsd_storage_" + name;
}

Graph SampleGraph() {
  return gen::PowerLawWithCommunities(500, 3, 8, 10, 0.8, 42);
}

/// Deterministic, every vertex degree >= 2: ring plus skip chords. Text
/// edge lists cannot represent isolated vertices, so bitwise text
/// round-trip tests need a graph without them (SampleGraph has a few).
Graph ConnectedSampleGraph() {
  constexpr VertexId n = 400;
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    builder.AddEdge(v, (v + 1) % n);
    builder.AddEdge(v, (v * 7 + 3) % n);
  }
  return builder.Build();
}

bool BitwiseEqual(const Graph& a, const Graph& b) {
  const auto ao = a.RawOffsets();
  const auto bo = b.RawOffsets();
  const auto an = a.RawNeighbors();
  const auto bn = b.RawNeighbors();
  return ao.size() == bo.size() && an.size() == bn.size() &&
         std::memcmp(ao.data(), bo.data(), ao.size_bytes()) == 0 &&
         (an.empty() ||
          std::memcmp(an.data(), bn.data(), an.size_bytes()) == 0);
}

std::vector<unsigned char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path,
              const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// Container round-trips

TEST(DsdgFormatTest, RoundTripsBitwiseViaMmapAndFallback) {
  const Graph original = SampleGraph();
  const std::string path = TempPath("roundtrip.dsdg");
  ASSERT_TRUE(WriteDsdgFile(original, path).ok());

  OpenOptions mmap_options;
  mmap_options.use_mmap = true;
  StatusOr<Graph> mapped = OpenDsdgFile(path, mmap_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().IsBorrowed());
  EXPECT_TRUE(BitwiseEqual(original, mapped.value()));

  OpenOptions fallback_options;
  fallback_options.use_mmap = false;
  StatusOr<Graph> buffered = OpenDsdgFile(path, fallback_options);
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_TRUE(BitwiseEqual(original, buffered.value()));

  // Graph-level accessors agree too, not just the raw arrays.
  EXPECT_EQ(original.NumVertices(), mapped.value().NumVertices());
  EXPECT_EQ(original.NumEdges(), mapped.value().NumEdges());
  for (VertexId v = 0; v < original.NumVertices(); v += 37) {
    ASSERT_TRUE(std::equal(original.Neighbors(v).begin(),
                           original.Neighbors(v).end(),
                           mapped.value().Neighbors(v).begin(),
                           mapped.value().Neighbors(v).end()));
  }
}

TEST(DsdgFormatTest, EmptyAndEdgelessGraphsRoundTrip) {
  const std::string path = TempPath("empty.dsdg");
  const Graph empty;
  ASSERT_TRUE(WriteDsdgFile(empty, path).ok());
  StatusOr<Graph> reread = OpenDsdgFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(reread.value().NumVertices(), 0u);
  EXPECT_EQ(reread.value().NumEdges(), 0u);

  GraphBuilder builder(3);  // vertices but no edges
  const Graph edgeless = builder.Build();
  ASSERT_TRUE(WriteDsdgFile(edgeless, path).ok());
  reread = OpenDsdgFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(reread.value().NumVertices(), 3u);
  EXPECT_EQ(reread.value().NumEdges(), 0u);
}

TEST(DsdgFormatTest, VerifyAtOpenAcceptsIntactFile) {
  const std::string path = TempPath("verified.dsdg");
  ASSERT_TRUE(WriteDsdgFile(SampleGraph(), path).ok());
  OpenOptions options;
  options.verify = true;
  EXPECT_TRUE(OpenDsdgFile(path, options).ok());
  EXPECT_TRUE(VerifyDsdgFile(path).ok());
}

// ---------------------------------------------------------------------------
// Corruption and mismatch rejection

TEST(DsdgFormatTest, RejectsBadMagic) {
  const std::string path = TempPath("bad_magic.dsdg");
  ASSERT_TRUE(WriteDsdgFile(SampleGraph(), path).ok());
  std::vector<unsigned char> bytes = ReadAll(path);
  bytes[0] ^= 0xFF;
  WriteAll(path, bytes);
  StatusOr<Graph> opened = OpenDsdgFile(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument());
  EXPECT_NE(opened.status().message().find("bad magic"), std::string::npos)
      << opened.status().ToString();
}

TEST(DsdgFormatTest, RejectsVersionMismatch) {
  const std::string path = TempPath("bad_version.dsdg");
  ASSERT_TRUE(WriteDsdgFile(SampleGraph(), path).ok());
  std::vector<unsigned char> bytes = ReadAll(path);
  bytes[8] = 99;  // version field, offset 8
  WriteAll(path, bytes);
  StatusOr<Graph> opened = OpenDsdgFile(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument());
  EXPECT_NE(opened.status().message().find("version"), std::string::npos)
      << opened.status().ToString();
}

TEST(DsdgFormatTest, RejectsForeignEndianness) {
  const std::string path = TempPath("bad_endian.dsdg");
  ASSERT_TRUE(WriteDsdgFile(SampleGraph(), path).ok());
  std::vector<unsigned char> bytes = ReadAll(path);
  // Byte-swap the endian tag (offset 12): what a big-endian writer's file
  // looks like to this little-endian reader.
  std::swap(bytes[12], bytes[15]);
  std::swap(bytes[13], bytes[14]);
  WriteAll(path, bytes);
  StatusOr<Graph> opened = OpenDsdgFile(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument());
  EXPECT_NE(opened.status().message().find("endian"), std::string::npos)
      << opened.status().ToString();
}

TEST(DsdgFormatTest, RejectsCorruptHeaderViaChecksum) {
  const std::string path = TempPath("bad_header.dsdg");
  ASSERT_TRUE(WriteDsdgFile(SampleGraph(), path).ok());
  std::vector<unsigned char> bytes = ReadAll(path);
  bytes[17] ^= 0x01;  // inside num_vertices; magic/version/endian intact
  WriteAll(path, bytes);
  StatusOr<Graph> opened = OpenDsdgFile(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument());
  EXPECT_NE(opened.status().message().find("header checksum"),
            std::string::npos)
      << opened.status().ToString();
}

TEST(DsdgFormatTest, RejectsTruncatedFileAtOpen) {
  const std::string path = TempPath("truncated.dsdg");
  ASSERT_TRUE(WriteDsdgFile(SampleGraph(), path).ok());
  std::vector<unsigned char> bytes = ReadAll(path);
  ASSERT_GE(bytes.size(), size_t{64});
  bytes.erase(bytes.end() - 8, bytes.end());
  WriteAll(path, bytes);
  StatusOr<Graph> opened = OpenDsdgFile(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument());
  EXPECT_NE(opened.status().message().find("truncated"), std::string::npos)
      << opened.status().ToString();

  // Shorter than even a header: still a typed error, not a crash.
  bytes.resize(10);
  WriteAll(path, bytes);
  opened = OpenDsdgFile(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument());
}

TEST(DsdgFormatTest, PayloadCorruptionCaughtByVerifyNotByPlainOpen) {
  const std::string path = TempPath("bad_payload.dsdg");
  ASSERT_TRUE(WriteDsdgFile(SampleGraph(), path).ok());
  std::vector<unsigned char> bytes = ReadAll(path);
  bytes[bytes.size() - 1] ^= 0x01;  // flip a neighbor id bit
  WriteAll(path, bytes);

  // A plain open only checks the header and the size — by design (lazy
  // paging); the payload checksum is the on-demand deep check.
  EXPECT_TRUE(OpenDsdgFile(path).ok());
  const Status deep = VerifyDsdgFile(path);
  ASSERT_FALSE(deep.ok());
  EXPECT_TRUE(deep.IsInvalidArgument());

  OpenOptions options;
  options.verify = true;
  EXPECT_FALSE(OpenDsdgFile(path, options).ok());
}

TEST(DsdgFormatTest, MissingFileIsIoError) {
  StatusOr<Graph> opened = OpenDsdgFile(TempPath("nonexistent.dsdg"));
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsIoError());
}

// ---------------------------------------------------------------------------
// Generation tags: CachingOracle soundness across opens

TEST(DsdgFormatTest, EveryOpenGetsAFreshGenerationTag) {
  const Graph original = SampleGraph();
  const std::string path = TempPath("generation.dsdg");
  ASSERT_TRUE(WriteDsdgFile(original, path).ok());
  StatusOr<Graph> first = OpenDsdgFile(path);
  StatusOr<Graph> second = OpenDsdgFile(path);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Same bytes, three distinct identities: oracle caches keyed by
  // generation can never serve one graph's entries for another.
  EXPECT_NE(first.value().Generation(), original.Generation());
  EXPECT_NE(first.value().Generation(), second.value().Generation());
}

// ---------------------------------------------------------------------------
// Sniffing and the unified load path

TEST(SniffTest, DistinguishesContainerFromTextAndReportsMissing) {
  const std::string dsdg = TempPath("sniff.dsdg");
  ASSERT_TRUE(WriteDsdgFile(SampleGraph(), dsdg).ok());
  StatusOr<GraphFileKind> kind = SniffGraphFile(dsdg);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(kind.value(), GraphFileKind::kDsdg);

  const std::string text = TempPath("sniff.txt");
  WriteText(text, "0 1\n1 2\n");
  kind = SniffGraphFile(text);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(kind.value(), GraphFileKind::kEdgeList);

  EXPECT_TRUE(SniffGraphFile(TempPath("sniff_missing")).status().IsIoError());
}

TEST(SniffTest, LoadGraphFileDispatchesOnMagic) {
  const Graph original = ConnectedSampleGraph();
  const std::string dsdg = TempPath("load.dsdg");
  const std::string text = TempPath("load.txt");
  ASSERT_TRUE(WriteDsdgFile(original, dsdg).ok());
  ASSERT_TRUE(io::SaveEdgeList(original, text).ok());

  StatusOr<Graph> from_dsdg = LoadGraphFile(dsdg);
  ASSERT_TRUE(from_dsdg.ok());
  EXPECT_TRUE(BitwiseEqual(original, from_dsdg.value()));

  StatusOr<Graph> from_text = LoadGraphFile(text);
  ASSERT_TRUE(from_text.ok());
  EXPECT_TRUE(BitwiseEqual(original, from_text.value()));
}

// ---------------------------------------------------------------------------
// Edge-list ingestion

StatusOr<Graph> IngestText(const std::string& text,
                           IngestStats* stats = nullptr) {
  EdgeListIngester ingester;
  Status consumed = ingester.Consume(text);
  if (!consumed.ok()) return consumed;
  return ingester.Finish(stats);
}

TEST(IngestTest, ToleratesCommentsBlanksAndCrlf) {
  IngestStats stats;
  StatusOr<Graph> graph = IngestText(
      "# SNAP-style comment\n"
      "% matrix-market-style comment\n"
      "\n"
      "   \t \n"
      "0 1\r\n"
      "\t1  2\n"
      "2 0",  // final line without a newline still counts
      &stats);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value().NumVertices(), 3u);
  EXPECT_EQ(graph.value().NumEdges(), 3u);
  EXPECT_EQ(stats.comment_lines, 2u);
  EXPECT_EQ(stats.blank_lines, 2u);
  EXPECT_EQ(stats.lines, 7u);
  EXPECT_FALSE(stats.ids_remapped);
}

TEST(IngestTest, DropsSelfLoopsAndDuplicatesEitherOrientation) {
  IngestStats stats;
  StatusOr<Graph> graph = IngestText(
      "0 1\n"
      "1 0\n"  // reverse duplicate
      "0 1\n"  // exact duplicate
      "1 1\n"  // self loop
      "1 2\n",
      &stats);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().NumEdges(), 2u);
  EXPECT_EQ(stats.self_loops, 1u);
  EXPECT_EQ(stats.duplicate_edges, 2u);
}

TEST(IngestTest, RemapsOneBasedAndScatteredIdsPreservingOrder) {
  IngestStats stats;
  // 1-based ids: everything shifts down by one, order preserved.
  StatusOr<Graph> one_based = IngestText("1 2\n2 3\n3 1\n", &stats);
  ASSERT_TRUE(one_based.ok());
  EXPECT_EQ(one_based.value().NumVertices(), 3u);
  EXPECT_TRUE(stats.ids_remapped);
  EXPECT_EQ(one_based.value().Neighbors(0).size(), 2u);

  // Scattered ids compact by rank: 7 -> 0, 100 -> 1, 4000 -> 2.
  StatusOr<Graph> scattered = IngestText("100 7\n100 4000\n", &stats);
  ASSERT_TRUE(scattered.ok());
  EXPECT_EQ(scattered.value().NumVertices(), 3u);
  EXPECT_TRUE(stats.ids_remapped);
  const auto hub = scattered.value().Neighbors(1);  // 100 has both edges
  EXPECT_EQ(std::vector<VertexId>(hub.begin(), hub.end()),
            (std::vector<VertexId>{0, 2}));
}

TEST(IngestTest, MalformedLinesReportTypedErrorsWithLineNumbers) {
  StatusOr<Graph> missing_second = IngestText("0 1\n17\n");
  ASSERT_FALSE(missing_second.ok());
  EXPECT_TRUE(missing_second.status().IsInvalidArgument());
  EXPECT_NE(missing_second.status().message().find("line 2"),
            std::string::npos)
      << missing_second.status().ToString();

  StatusOr<Graph> garbage = IngestText("0 1\n1 2\nx y\n");
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.status().message().find("line 3"), std::string::npos);

  StatusOr<Graph> trailing = IngestText("0 1 weight\n");
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.status().message().find("trailing garbage"),
            std::string::npos);

  StatusOr<Graph> overflow = IngestText("0 999999999999999999999999\n");
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsInvalidArgument());
}

TEST(IngestTest, ErrorIsStickyAcrossConsumeAndFinish) {
  EdgeListIngester ingester;
  EXPECT_FALSE(ingester.Consume("bogus\n").ok());
  EXPECT_FALSE(ingester.Consume("0 1\n").ok());  // still the line-1 error
  StatusOr<Graph> finished = ingester.Finish();
  ASSERT_FALSE(finished.ok());
  EXPECT_NE(finished.status().message().find("line 1"), std::string::npos);
}

TEST(IngestTest, ChunkBoundariesInsideLinesAndTokensAreInvisible) {
  // Same edges as a one-shot parse, fed one byte at a time.
  const std::string text = "10 20\n20 30\n30 10\n";
  EdgeListIngester ingester;
  for (char c : text) {
    ASSERT_TRUE(ingester.Consume(std::string_view(&c, 1)).ok());
  }
  StatusOr<Graph> chunked = ingester.Finish();
  ASSERT_TRUE(chunked.ok());
  StatusOr<Graph> oneshot = IngestText(text);
  ASSERT_TRUE(oneshot.ok());
  EXPECT_TRUE(BitwiseEqual(chunked.value(), oneshot.value()));
}

TEST(IngestTest, FinishTwiceIsAnError) {
  EdgeListIngester ingester;
  ASSERT_TRUE(ingester.Consume("0 1\n").ok());
  EXPECT_TRUE(ingester.Finish().ok());
  EXPECT_FALSE(ingester.Finish().ok());
}

TEST(IngestTest, SavedEdgeListReingestsBitwise) {
  // The text round-trip contract: SaveEdgeList emits dense 0-based ids in
  // CSR order, and rank-based remapping maps them back verbatim.
  const Graph original = ConnectedSampleGraph();
  const std::string path = TempPath("reingest.txt");
  ASSERT_TRUE(io::SaveEdgeList(original, path).ok());
  IngestStats stats;
  StatusOr<Graph> reread = IngestEdgeListFile(path, &stats);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_TRUE(BitwiseEqual(original, reread.value()));
  EXPECT_FALSE(stats.ids_remapped);
  EXPECT_EQ(stats.duplicate_edges, 0u);
}

TEST(IngestTest, ConvertEdgeListToDsdgProducesTheSameGraph) {
  const std::string text = TempPath("convert.txt");
  const std::string dsdg = TempPath("convert.dsdg");
  WriteText(text, "# five\n1 2\n2 3\n3 1\n3 4\n4 5\n");
  IngestStats stats;
  ASSERT_TRUE(ConvertEdgeListToDsdg(text, dsdg, &stats).ok());
  EXPECT_EQ(stats.edges, 5u);
  StatusOr<Graph> direct = IngestEdgeListFile(text);
  StatusOr<Graph> via_dsdg = OpenDsdgFile(dsdg);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_dsdg.ok());
  EXPECT_TRUE(BitwiseEqual(direct.value(), via_dsdg.value()));
  EXPECT_TRUE(VerifyDsdgFile(dsdg).ok());
}

// ---------------------------------------------------------------------------
// Dataset registry

DatasetSpec SmallErSpec(const std::string& name) {
  DatasetSpec spec;
  spec.name = name;
  spec.kind = "er";
  spec.params = {{"n", "500"}, {"p", "0.01"}, {"seed", "7"}};
  return spec;
}

TEST(DatasetRegistryTest, BuiltinsArePresentAndValidated) {
  DatasetRegistry registry(TempPath("cache_builtin"));
  const std::vector<std::string> names = registry.Names();
  for (const char* expected : {"pl-100k", "pl-1m", "er-1m", "pl-10m"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_TRUE(registry.Info("pl-1m").ok());
  EXPECT_TRUE(registry.Info("nonesuch").status().IsNotFound());
  EXPECT_TRUE(registry.BuildFresh("nonesuch").status().IsNotFound());
  EXPECT_TRUE(registry.Materialize("nonesuch").status().IsNotFound());
}

TEST(DatasetRegistryTest, AddValidatesSpecsAtRegistration) {
  DatasetRegistry registry(TempPath("cache_add"));
  EXPECT_TRUE(registry.Add(SmallErSpec("tiny")).ok());

  DatasetSpec unknown_kind = SmallErSpec("bad1");
  unknown_kind.kind = "quantum";
  EXPECT_TRUE(registry.Add(unknown_kind).IsInvalidArgument());

  DatasetSpec missing_param = SmallErSpec("bad2");
  missing_param.params.erase("seed");
  EXPECT_TRUE(registry.Add(missing_param).IsInvalidArgument());

  DatasetSpec extra_param = SmallErSpec("bad3");
  extra_param.params["bogus"] = "1";
  EXPECT_TRUE(registry.Add(extra_param).IsInvalidArgument());

  DatasetSpec non_numeric = SmallErSpec("bad4");
  non_numeric.params["n"] = "many";
  EXPECT_TRUE(registry.Add(non_numeric).IsInvalidArgument());

  DatasetSpec unnamed = SmallErSpec("");
  EXPECT_TRUE(registry.Add(unnamed).IsInvalidArgument());
}

TEST(DatasetRegistryTest, MaterializeCachesAndOpenMatchesBuildFresh) {
  const std::string cache = TempPath("cache_mat");
  std::filesystem::remove_all(cache);
  DatasetRegistry registry(cache);
  ASSERT_TRUE(registry.Add(SmallErSpec("tiny")).ok());

  StatusOr<std::string> path = registry.Materialize("tiny");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_TRUE(std::filesystem::exists(path.value()));
  const auto first_write = std::filesystem::last_write_time(path.value());

  // Second materialize reuses the cache file instead of regenerating.
  StatusOr<std::string> again = registry.Materialize("tiny");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(path.value(), again.value());
  EXPECT_EQ(first_write, std::filesystem::last_write_time(again.value()));

  // And the cached container holds exactly the fixed-seed graph.
  StatusOr<Graph> opened = registry.Open("tiny");
  StatusOr<Graph> fresh = registry.BuildFresh("tiny");
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(opened.value().IsBorrowed());
  EXPECT_TRUE(BitwiseEqual(opened.value(), fresh.value()));
}

TEST(DatasetRegistryTest, FileKindPassesThroughDsdgAndConvertsText) {
  const std::string cache = TempPath("cache_file");
  std::filesystem::remove_all(cache);
  DatasetRegistry registry(cache);

  const Graph graph = ConnectedSampleGraph();
  const std::string dsdg = TempPath("filekind.dsdg");
  ASSERT_TRUE(WriteDsdgFile(graph, dsdg).ok());
  DatasetSpec direct;
  direct.name = "direct";
  direct.kind = "file";
  direct.params = {{"path", dsdg}};
  ASSERT_TRUE(registry.Add(direct).ok());
  StatusOr<std::string> path = registry.Materialize("direct");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(), dsdg);  // already a container: no copy

  const std::string text = TempPath("filekind.txt");
  ASSERT_TRUE(io::SaveEdgeList(graph, text).ok());
  DatasetSpec textual;
  textual.name = "textual";
  textual.kind = "file";
  textual.params = {{"path", text}};
  ASSERT_TRUE(registry.Add(textual).ok());
  path = registry.Materialize("textual");
  ASSERT_TRUE(path.ok());
  EXPECT_NE(path.value(), text);  // converted into the cache
  StatusOr<Graph> opened = registry.Open("textual");
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(BitwiseEqual(graph, opened.value()));
}

TEST(DatasetRegistryTest, ManifestAddsEntriesAndReportsLineNumbers) {
  DatasetRegistry registry(TempPath("cache_manifest"));
  const std::string manifest = TempPath("manifest.txt");
  WriteText(manifest,
            "# local datasets\n"
            "\n"
            "web er n=1000 p=0.004 seed=11\n"
            "roads ba n=2000 epv=2 seed=12\n");
  ASSERT_TRUE(registry.LoadManifest(manifest).ok());
  EXPECT_TRUE(registry.Info("web").ok());
  EXPECT_TRUE(registry.Info("roads").ok());

  WriteText(manifest, "ok er n=10 p=0.1 seed=1\nbroken er n=10\n");
  Status bad = registry.LoadManifest(manifest);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.IsInvalidArgument());
  EXPECT_NE(bad.message().find("line 2"), std::string::npos)
      << bad.ToString();

  WriteText(manifest, "noparams\n");
  bad = registry.LoadManifest(manifest);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("line 1"), std::string::npos);

  WriteText(manifest, "x er n=10 p=0.1 seed=1 malformed-token\n");
  bad = registry.LoadManifest(manifest);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("key=value"), std::string::npos);

  EXPECT_TRUE(
      registry.LoadManifest(TempPath("manifest_missing")).IsIoError());
}

// ---------------------------------------------------------------------------
// Memory footprint (reported by dsd_cli --stats and server stats)

TEST(MemoryFootprintTest, CountsBothCsrArrays) {
  const Graph graph = SampleGraph();
  const size_t expected =
      (static_cast<size_t>(graph.NumVertices()) + 1) * sizeof(EdgeId) +
      static_cast<size_t>(2 * graph.NumEdges()) * sizeof(VertexId);
  EXPECT_EQ(graph.MemoryFootprintBytes(), expected);
  EXPECT_EQ(Graph().MemoryFootprintBytes(), sizeof(EdgeId));

  // A borrowed (mmap) graph reports the same footprint as its owned twin.
  const std::string path = TempPath("footprint.dsdg");
  ASSERT_TRUE(WriteDsdgFile(graph, path).ok());
  StatusOr<Graph> mapped = OpenDsdgFile(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value().MemoryFootprintBytes(), expected);
}

}  // namespace
}  // namespace dsd::storage
