// dsd_server — the densest-subgraph daemon.
//
// Usage:
//   dsd_server --port N [--threads N] [--workers N] [--max-queue N]
//              [--preload name=preset[:seed]]... [--preload name=@file]...
//   dsd_server --stdin [--threads N] [--workers N] [--max-queue N]
//              [--preload ...]
//
// TCP mode binds 127.0.0.1:<port> (0 = ephemeral; the bound port is
// printed as "LISTENING <port>" on stdout so wrappers can scrape it) and
// serves concurrent connections until SIGTERM/SIGINT or a `shutdown`
// frame, then drains: in-flight solves finish and their responses are
// written before exit. --stdin serves the same protocol synchronously
// over stdin/stdout — the mode tests and CI pipe frames through.
//
// The wire protocol, admission-control, and budget-partitioning
// semantics live in src/server/ (see protocol.h and executor.h); this
// file is only flag parsing, preloading, and signal wiring.
//
// Exit codes: 0 clean shutdown, 1 environment failure (bind/IO), 2 bad
// usage or preload failure.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/io.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/graph_store.h"

namespace {

using dsd::server::DsdServer;

// The SIGTERM/SIGINT target. StopTcp is async-signal-safe by contract
// (one shutdown(2) call); everything else waits for ServeTcp to notice.
DsdServer* g_server = nullptr;

void HandleSignal(int /*signal*/) {
  if (g_server != nullptr) g_server->StopTcp();
}

[[noreturn]] void Usage(const char* error) {
  std::FILE* out = error != nullptr ? stderr : stdout;
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      out,
      "usage: dsd_server (--port N | --stdin) [--threads N] [--workers N]\n"
      "                  [--max-queue N] [--preload NAME=PRESET[:SEED]]...\n"
      "                  [--preload NAME=@FILE]...\n"
      "  --port N       serve TCP on 127.0.0.1:N (0 = ephemeral, bound\n"
      "                 port printed as 'LISTENING <port>')\n"
      "  --stdin        serve the frame protocol over stdin/stdout\n"
      "  --threads N    hardware budget partitioned across in-flight\n"
      "                 solves (default: hardware concurrency)\n"
      "  --workers N    executor lanes (default: min(threads, 4))\n"
      "  --max-queue N  admission queue bound (default 64)\n"
      "  --preload      make a graph resident at startup; PRESET is one\n"
      "                 of ba-small, planted-clique, server-replay, or\n"
      "                 @FILE loads an edge list or .dsdg container\n"
      "                 (sniffed by magic)\n");
  std::exit(error == nullptr ? 0 : 2);
}

unsigned ParseUnsigned(const std::string& flag, const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    Usage((flag + " expects a non-negative integer, got '" + text + "'")
              .c_str());
  }
  const unsigned long value = std::strtoul(text.c_str(), nullptr, 10);
  if (value > 1u << 20) {
    Usage((flag + " value out of range: '" + text + "'").c_str());
  }
  return static_cast<unsigned>(value);
}

struct Preload {
  std::string name;
  std::string source;  // "preset", "preset:seed", or "@file"
};

Preload ParsePreload(const std::string& text) {
  const size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == text.size()) {
    Usage(("--preload expects NAME=PRESET[:SEED] or NAME=@FILE, got '" +
           text + "'")
              .c_str());
  }
  return {text.substr(0, eq), text.substr(eq + 1)};
}

int ApplyPreload(DsdServer& server, const Preload& preload) {
  dsd::StatusOr<dsd::Graph> graph = [&]() -> dsd::StatusOr<dsd::Graph> {
    if (!preload.source.empty() && preload.source[0] == '@') {
      // Sniffs .dsdg containers (mmap'ed zero-copy) vs edge-list text.
      return dsd::storage::LoadGraphFile(preload.source.substr(1));
    }
    const size_t colon = preload.source.find(':');
    if (colon == std::string::npos) {
      return dsd::server::BuildPresetGraph(preload.source, 0, false);
    }
    const std::string seed_text = preload.source.substr(colon + 1);
    if (seed_text.empty() ||
        seed_text.find_first_not_of("0123456789") != std::string::npos) {
      return dsd::Status::InvalidArgument("bad preset seed '" + seed_text +
                                          "'");
    }
    return dsd::server::BuildPresetGraph(
        preload.source.substr(0, colon),
        std::strtoull(seed_text.c_str(), nullptr, 10), true);
  }();
  if (!graph.ok()) {
    std::fprintf(stderr, "error: preload %s: %s\n", preload.name.c_str(),
                 graph.status().ToString().c_str());
    return 2;
  }
  const dsd::Status added =
      server.AddGraph(preload.name, std::move(graph).value());
  if (!added.ok()) {
    std::fprintf(stderr, "error: preload %s: %s\n", preload.name.c_str(),
                 added.ToString().c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool use_stdin = false;
  bool have_port = false;
  unsigned port = 0;
  dsd::server::ServerOptions options;
  std::vector<Preload> preloads;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        Usage((std::string(flag) + " expects a value").c_str());
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage(nullptr);
    } else if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg == "--port") {
      port = ParseUnsigned(arg, next("--port"));
      if (port > 65535) Usage("--port must be <= 65535");
      have_port = true;
    } else if (arg == "--threads") {
      options.hardware_threads = ParseUnsigned(arg, next("--threads"));
    } else if (arg == "--workers") {
      options.workers = ParseUnsigned(arg, next("--workers"));
    } else if (arg == "--max-queue") {
      options.max_queue = ParseUnsigned(arg, next("--max-queue"));
    } else if (arg == "--preload") {
      preloads.push_back(ParsePreload(next("--preload")));
    } else {
      Usage(("unknown flag '" + arg + "'").c_str());
    }
  }
  if (use_stdin == have_port) {
    Usage("exactly one of --port or --stdin is required");
  }

  DsdServer server(options);
  for (const Preload& preload : preloads) {
    const int status = ApplyPreload(server, preload);
    if (status != 0) return status;
  }

  if (use_stdin) {
    const dsd::Status served = server.ServePipe(0, 1);
    server.Drain();
    if (!served.ok()) {
      std::fprintf(stderr, "error: %s\n", served.ToString().c_str());
      return 1;
    }
    return 0;
  }

  dsd::StatusOr<uint16_t> bound =
      server.ListenTcp(static_cast<uint16_t>(port));
  if (!bound.ok()) {
    std::fprintf(stderr, "error: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", static_cast<unsigned>(bound.value()));
  std::fflush(stdout);

  g_server = &server;
  struct sigaction action{};
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  server.ServeTcp();  // returns after the graceful drain
  g_server = nullptr;
  return 0;
}
