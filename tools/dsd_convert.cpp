// dsd_convert — convert between edge-list text and .dsdg binary graph
// containers, with integrity verification and dataset statistics.
//
// Usage:
//   dsd_convert [--verify] [--stats] [--no-mmap] INPUT [OUTPUT]
//   dsd_convert --dataset NAME [--verify] [--stats]
//
// INPUT's format is sniffed by magic, never by name: a .dsdg container
// opens via mmap, anything else streams through the SNAP edge-list
// ingester. OUTPUT's direction is chosen by extension: *.dsdg writes the
// binary container, anything else writes normalized "u v" text. With no
// OUTPUT the input is only loaded (useful with --stats / --verify).
//
//   --verify   after writing, re-open OUTPUT and check it round-trips
//              BITWISE (identical CSR arrays); for .dsdg output also run
//              the full container integrity check (checksums, monotone
//              offsets, sorted in-range adjacency). With no OUTPUT,
//              verifies INPUT itself when it is a .dsdg.
//   --stats    print vertices/edges/degree stats, the in-memory CSR
//              footprint, load time, and — for text input — the
//              ingestion log (comments, self-loops, duplicates, remap).
//   --no-mmap  open .dsdg via the malloc-and-read fallback.
//   --dataset  materialize a registry dataset (writing its .dsdg cache
//              if missing) and treat it as INPUT.
//
// Exit codes: 0 success, 1 environment failure (IoError), 2 bad usage or
// malformed input (InvalidArgument/NotFound), 3 verification mismatch.
#include <cstdio>
#include <cstring>
#include <string>

#include "graph/graph.h"
#include "graph/io.h"
#include "storage/dataset_registry.h"
#include "storage/graph_store.h"
#include "storage/ingest.h"
#include "util/timer.h"

namespace {

[[noreturn]] void Usage(const char* error) {
  std::FILE* out = error != nullptr ? stderr : stdout;
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(out,
               "usage: dsd_convert [--verify] [--stats] [--no-mmap] INPUT "
               "[OUTPUT]\n"
               "       dsd_convert --dataset NAME [--verify] [--stats]\n"
               "  INPUT   edge-list text or .dsdg container (sniffed by "
               "magic)\n"
               "  OUTPUT  *.dsdg writes the binary container, anything else\n"
               "          writes normalized edge-list text\n"
               "  --verify    round-trip OUTPUT bitwise + full .dsdg "
               "integrity check\n"
               "  --stats     print graph/ingestion statistics\n"
               "  --no-mmap   use the read-into-memory fallback for .dsdg\n"
               "  --dataset   materialize a registry dataset as INPUT\n");
  std::exit(error == nullptr ? 0 : 2);
}

int ExitCodeFor(const dsd::Status& status) {
  if (status.ok()) return 0;
  return status.IsIoError() ? 1 : 2;
}

bool EndsWith(const std::string& text, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

void PrintStats(const dsd::Graph& graph, double load_seconds,
                const dsd::storage::IngestStats* ingest) {
  std::printf("vertices        %u\n", graph.NumVertices());
  std::printf("edges           %llu\n",
              static_cast<unsigned long long>(graph.NumEdges()));
  std::printf("max_degree      %llu\n",
              static_cast<unsigned long long>(graph.MaxDegree()));
  const double n = graph.NumVertices();
  std::printf("avg_degree      %.3f\n",
              n > 0 ? 2.0 * static_cast<double>(graph.NumEdges()) / n : 0.0);
  std::printf("memory_bytes    %zu\n", graph.MemoryFootprintBytes());
  std::printf("storage         %s\n",
              graph.IsBorrowed() ? "mmap (borrowed)" : "heap (owned)");
  std::printf("load_ms         %.3f\n", load_seconds * 1e3);
  if (ingest != nullptr) {
    std::printf("input_lines     %llu (comments %llu, blank %llu)\n",
                static_cast<unsigned long long>(ingest->lines),
                static_cast<unsigned long long>(ingest->comment_lines),
                static_cast<unsigned long long>(ingest->blank_lines));
    std::printf("self_loops      %llu\n",
                static_cast<unsigned long long>(ingest->self_loops));
    std::printf("duplicate_edges %llu\n",
                static_cast<unsigned long long>(ingest->duplicate_edges));
    std::printf("ids_remapped    %s\n", ingest->ids_remapped ? "yes" : "no");
  }
}

/// Bitwise CSR equality — the round-trip contract --verify enforces.
bool BitwiseEqual(const dsd::Graph& a, const dsd::Graph& b) {
  const auto ao = a.RawOffsets();
  const auto bo = b.RawOffsets();
  const auto an = a.RawNeighbors();
  const auto bn = b.RawNeighbors();
  return ao.size() == bo.size() && an.size() == bn.size() &&
         std::memcmp(ao.data(), bo.data(), ao.size_bytes()) == 0 &&
         (an.empty() ||
          std::memcmp(an.data(), bn.data(), an.size_bytes()) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  bool stats = false;
  bool no_mmap = false;
  std::string dataset;
  std::string input;
  std::string output;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage(nullptr);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--no-mmap") {
      no_mmap = true;
    } else if (arg == "--dataset") {
      if (i + 1 >= argc) Usage("--dataset expects a name");
      dataset = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      Usage(("unknown flag '" + arg + "'").c_str());
    } else if (input.empty()) {
      input = arg;
    } else if (output.empty()) {
      output = arg;
    } else {
      Usage("too many positional arguments");
    }
  }
  if (dataset.empty() == input.empty()) {
    Usage("exactly one of INPUT or --dataset NAME is required");
  }
  if (!dataset.empty() && !output.empty()) {
    Usage("--dataset does not take an OUTPUT (it materializes its own)");
  }

  if (!dataset.empty()) {
    dsd::StatusOr<std::string> path =
        dsd::storage::GlobalDatasetRegistry().Materialize(dataset);
    if (!path.ok()) {
      std::fprintf(stderr, "error: %s\n", path.status().ToString().c_str());
      return ExitCodeFor(path.status());
    }
    std::printf("dataset %s -> %s\n", dataset.c_str(), path.value().c_str());
    input = path.value();
  }

  // Load the input (sniffed), timing it and collecting ingestion stats
  // when the source is text.
  dsd::storage::OpenOptions open_options;
  open_options.use_mmap = !no_mmap;
  dsd::storage::IngestStats ingest_stats;
  const dsd::storage::IngestStats* ingest_view = nullptr;

  dsd::StatusOr<dsd::storage::GraphFileKind> kind =
      dsd::storage::SniffGraphFile(input);
  if (!kind.ok()) {
    std::fprintf(stderr, "error: %s\n", kind.status().ToString().c_str());
    return ExitCodeFor(kind.status());
  }
  dsd::Timer load_timer;
  dsd::StatusOr<dsd::Graph> loaded =
      kind.value() == dsd::storage::GraphFileKind::kDsdg
          ? dsd::storage::OpenDsdgFile(input, open_options)
          : dsd::storage::IngestEdgeListFile(input, &ingest_stats);
  const double load_seconds = load_timer.Seconds();
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return ExitCodeFor(loaded.status());
  }
  if (kind.value() == dsd::storage::GraphFileKind::kEdgeList) {
    ingest_view = &ingest_stats;
  }
  const dsd::Graph& graph = loaded.value();

  if (stats) PrintStats(graph, load_seconds, ingest_view);

  if (!output.empty()) {
    const bool to_dsdg = EndsWith(output, ".dsdg");
    const dsd::Status written =
        to_dsdg ? dsd::storage::WriteDsdgFile(graph, output)
                : dsd::io::SaveEdgeList(graph, output);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return ExitCodeFor(written);
    }
    std::printf("wrote %s (%s)\n", output.c_str(),
                to_dsdg ? "dsdg" : "edge list");

    if (verify) {
      if (to_dsdg) {
        const dsd::Status integrity = dsd::storage::VerifyDsdgFile(output);
        if (!integrity.ok()) {
          std::fprintf(stderr, "verify: %s\n", integrity.ToString().c_str());
          return 3;
        }
      }
      dsd::StatusOr<dsd::Graph> reread =
          dsd::storage::LoadGraphFile(output, open_options);
      if (!reread.ok()) {
        std::fprintf(stderr, "verify: %s\n",
                     reread.status().ToString().c_str());
        return 3;
      }
      if (!BitwiseEqual(graph, reread.value())) {
        std::fprintf(stderr,
                     "verify: round-trip mismatch (re-read CSR differs "
                     "bitwise from the source graph)\n");
        return 3;
      }
      std::printf("verify ok (bitwise round-trip%s)\n",
                  to_dsdg ? " + container integrity" : "");
    }
  } else if (verify) {
    if (kind.value() == dsd::storage::GraphFileKind::kDsdg) {
      const dsd::Status integrity = dsd::storage::VerifyDsdgFile(input);
      if (!integrity.ok()) {
        std::fprintf(stderr, "verify: %s\n", integrity.ToString().c_str());
        return 3;
      }
      std::printf("verify ok (container integrity)\n");
    } else {
      std::printf("verify: input is an edge list; nothing beyond the parse "
                  "to check\n");
    }
  }
  return 0;
}
