// dsd_cli — command-line densest subgraph discovery.
//
// Usage:
//   dsd_cli --input graph.txt [--motif triangle] [--algo core-exact]
//           [--query 3,17,42] [--min-size 20] [--eps 0.1] [--threads N]
//           [--time-budget S] [--verbose]
//   dsd_cli --demo            # run on a small generated graph
//   dsd_cli --stats           # print graph statistics and exit (no solve)
//   dsd_cli --list-algos      # registered algorithms, one per line
//   dsd_cli --list-motifs     # recognised motif names, one per line
//
// --input accepts edge-list text or a .dsdg binary container (sniffed by
// magic; .dsdg opens via mmap, zero-copy).
//
// The CLI is a thin shell over dsd::Solve: flags are packed into a
// dsd::SolveRequest and every semantic check (unknown algorithm/motif, bad
// eps, missing --min-size/--query, out-of-range or duplicate seeds) happens
// in the library, which reports a Status instead of exiting.
//
// Exit codes map the Status taxonomy so scripts can branch without parsing
// stderr: 0 success, 1 environment failure (IoError), 2 bad request
// (usage, InvalidArgument, NotFound), 3 blown time budget
// (DeadlineExceeded), 4 capacity shed (ResourceExhausted — surfaced by
// embedders with admission control, e.g. dsd_server).
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "dsd/dsd.h"
#include "storage/graph_store.h"

namespace {

using dsd::VertexId;

struct Options {
  std::string input;
  bool demo = false;
  bool stats = false;
  bool verbose = false;
  dsd::SolveRequest request;
};

[[noreturn]] void Usage(const char* error) {
  std::FILE* out = error != nullptr ? stderr : stdout;
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      out,
      "usage: dsd_cli (--input FILE | --demo) [--motif M] [--algo A]\n"
      "               [--query v1,v2,...] [--min-size K] [--eps E]\n"
      "               [--threads N] [--time-budget S] [--stats]\n"
      "               [--verbose]\n"
      "       dsd_cli --list-algos | --list-motifs\n"
      "  FILE is edge-list text or a .dsdg container (sniffed by magic);\n"
      "  --stats prints graph statistics (incl. memory footprint) and\n"
      "  exits without solving\n"
      "  motifs:     edge triangle <h>-clique 2-star 3-star c3-star diamond\n"
      "              2-triangle 3-triangle basket\n"
      "  algorithms: exact core-exact peel inc-app core-app stream at-least "
      "query\n");
  std::exit(error == nullptr ? 0 : 2);
}

VertexId ParseVertexId(const std::string& flag, const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    Usage((flag + " expects a non-negative integer, got '" + text + "'")
              .c_str());
  }
  try {
    unsigned long value = std::stoul(text);
    if (value > std::numeric_limits<VertexId>::max()) {
      throw std::out_of_range(text);
    }
    return static_cast<VertexId>(value);
  } catch (const std::out_of_range&) {
    Usage((flag + " value out of range: '" + text + "'").c_str());
  }
}

double ParseDouble(const std::string& flag, const std::string& text) {
  try {
    size_t used = 0;
    double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    Usage((flag + " expects a number, got '" + text + "'").c_str());
  }
}

std::vector<VertexId> ParseIdList(const std::string& text) {
  std::vector<VertexId> ids;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    ids.push_back(ParseVertexId("--query", text.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  if (ids.empty()) Usage("--query expects a comma-separated vertex list");
  return ids;
}

/// Status taxonomy -> process exit code (documented in the header comment
/// and README). Usage errors share code 2 with InvalidArgument: both mean
/// "the request was wrong", whoever caught it first.
int ExitCodeFor(const dsd::Status& status) {
  if (status.ok()) return 0;
  if (status.IsIoError()) return 1;
  if (status.IsDeadlineExceeded()) return 3;
  if (status.IsResourceExhausted()) return 4;
  return 2;  // InvalidArgument, NotFound: a bad request either way.
}

[[noreturn]] void ListAndExit(const std::vector<std::string>& names) {
  for (const std::string& name : names) std::printf("%s\n", name.c_str());
  std::exit(0);
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--input") {
      options.input = next();
    } else if (arg == "--demo") {
      options.demo = true;
    } else if (arg == "--motif") {
      options.request.motif = next();
    } else if (arg == "--algo") {
      options.request.algorithm = next();
    } else if (arg == "--query") {
      options.request.seeds = ParseIdList(next());
    } else if (arg == "--min-size") {
      options.request.min_size = ParseVertexId("--min-size", next());
    } else if (arg == "--eps") {
      options.request.eps = ParseDouble("--eps", next());
    } else if (arg == "--threads") {
      options.request.threads =
          static_cast<unsigned>(ParseVertexId("--threads", next()));
    } else if (arg == "--time-budget") {
      options.request.time_budget_seconds =
          ParseDouble("--time-budget", next());
    } else if (arg == "--list-algos") {
      ListAndExit(dsd::SolverRegistry::Global().Names());
    } else if (arg == "--list-motifs") {
      ListAndExit(dsd::KnownMotifNames());
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(nullptr);
    } else {
      Usage(("unknown flag " + arg).c_str());
    }
  }
  if (options.input.empty() && !options.demo) {
    Usage("one of --input or --demo is required");
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  Options options = ParseArgs(argc, argv);

  dsd::Graph graph;
  if (options.demo) {
    graph = dsd::gen::PlantedClique(500, 0.01, 15, 7);
    std::printf("# demo graph (planted K15 in G(500, 0.01))\n");
  } else {
    dsd::StatusOr<dsd::Graph> loaded =
        dsd::storage::LoadGraphFile(options.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return ExitCodeFor(loaded.status());
    }
    graph = std::move(loaded).value();
  }
  std::printf("# graph: n=%u m=%llu\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  if (options.stats) {
    std::printf("vertices      %u\n", graph.NumVertices());
    std::printf("edges         %llu\n",
                static_cast<unsigned long long>(graph.NumEdges()));
    std::printf("max_degree    %llu\n",
                static_cast<unsigned long long>(graph.MaxDegree()));
    const double n = graph.NumVertices();
    std::printf("avg_degree    %.3f\n",
                n > 0 ? 2.0 * static_cast<double>(graph.NumEdges()) / n
                      : 0.0);
    std::printf("memory_bytes  %zu\n", graph.MemoryFootprintBytes());
    std::printf("storage       %s\n",
                graph.IsBorrowed() ? "mmap (borrowed)" : "heap (owned)");
    return 0;
  }

  dsd::StatusOr<dsd::SolveResponse> solved =
      dsd::Solve(graph, options.request);
  if (!solved.ok()) {
    std::fprintf(stderr, "error: %s\n", solved.status().ToString().c_str());
    return ExitCodeFor(solved.status());
  }
  const dsd::SolveResponse& response = solved.value();
  const dsd::DensestResult& result = response.result;

  std::printf("motif      %s\n", response.stats.motif.c_str());
  std::printf("algorithm  %s\n", response.stats.algorithm.c_str());
  // Effective worker count: the --threads budget clamped by what the
  // algorithm and oracle can exploit (sequential algorithms report 1).
  std::printf("threads    %u\n", response.stats.threads);
  std::printf("density    %.6f\n", result.density);
  std::printf("instances  %llu\n",
              static_cast<unsigned long long>(result.instances));
  std::printf("vertices   %zu\n", result.vertices.size());
  std::printf("time       %.3f ms\n", result.stats.total_seconds * 1e3);
  if (options.verbose) {
    std::printf("members   ");
    for (VertexId v : result.vertices) std::printf(" %u", v);
    std::printf("\n");
    if (result.stats.kmax > 0) {
      std::printf("kmax       %u\n", result.stats.kmax);
    }
    if (result.stats.binary_search_iterations > 0) {
      std::printf("iterations %d\n", result.stats.binary_search_iterations);
    }
    if (result.stats.peel.brackets > 0) {
      const dsd::PeelEngineStats& peel = result.stats.peel;
      std::printf("peel       brackets=%llu overlapped=%llu spec_hits=%llu "
                  "spec_misses=%llu refill=%.3f ms stall=%.3f ms\n",
                  static_cast<unsigned long long>(peel.brackets),
                  static_cast<unsigned long long>(peel.brackets_overlapped),
                  static_cast<unsigned long long>(peel.speculation_hits),
                  static_cast<unsigned long long>(peel.speculation_misses),
                  static_cast<double>(peel.refill_ns) * 1e-6,
                  static_cast<double>(peel.apply_stall_ns) * 1e-6);
    }
    std::printf("wall       %.3f ms\n", response.stats.wall_seconds * 1e3);
  }
  return 0;
}
