// dsd_cli — command-line densest subgraph discovery.
//
// Usage:
//   dsd_cli --input graph.txt [--motif triangle] [--algo core-exact]
//           [--query 3,17,42] [--min-size 20] [--eps 0.1] [--verbose]
//   dsd_cli --demo            # run on a small generated graph
//
// Motifs: edge | triangle | <h>-clique (h in 2..9) | 2-star | 3-star |
//         c3-star | diamond | 2-triangle | 3-triangle | basket
// Algorithms: exact | core-exact | peel | inc-app | core-app | stream |
//             at-least (needs --min-size) | query (needs --query)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dsd/dsd.h"

namespace {

using dsd::VertexId;

struct Options {
  std::string input;
  bool demo = false;
  std::string motif = "edge";
  std::string algo = "core-exact";
  std::vector<VertexId> query;
  VertexId min_size = 0;
  double eps = 0.1;
  bool verbose = false;
};

[[noreturn]] void Usage(const char* error) {
  std::FILE* out = error != nullptr ? stderr : stdout;
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      out,
      "usage: dsd_cli (--input FILE | --demo) [--motif M] [--algo A]\n"
      "               [--query v1,v2,...] [--min-size K] [--eps E] "
      "[--verbose]\n"
      "  motifs:     edge triangle <h>-clique 2-star 3-star c3-star diamond\n"
      "              2-triangle 3-triangle basket\n"
      "  algorithms: exact core-exact peel inc-app core-app stream at-least "
      "query\n");
  std::exit(error == nullptr ? 0 : 2);
}

VertexId ParseVertexId(const std::string& flag, const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    Usage((flag + " expects a non-negative integer, got '" + text + "'")
              .c_str());
  }
  try {
    unsigned long value = std::stoul(text);
    if (value > std::numeric_limits<VertexId>::max()) {
      throw std::out_of_range(text);
    }
    return static_cast<VertexId>(value);
  } catch (const std::out_of_range&) {
    Usage((flag + " value out of range: '" + text + "'").c_str());
  }
}

double ParseDouble(const std::string& flag, const std::string& text) {
  try {
    size_t used = 0;
    double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    Usage((flag + " expects a number, got '" + text + "'").c_str());
  }
}

std::vector<VertexId> ParseIdList(const std::string& text) {
  std::vector<VertexId> ids;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    ids.push_back(ParseVertexId("--query", text.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  if (ids.empty()) Usage("--query expects a comma-separated vertex list");
  return ids;
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--input") {
      options.input = next();
    } else if (arg == "--demo") {
      options.demo = true;
    } else if (arg == "--motif") {
      options.motif = next();
    } else if (arg == "--algo") {
      options.algo = next();
    } else if (arg == "--query") {
      options.query = ParseIdList(next());
    } else if (arg == "--min-size") {
      options.min_size = ParseVertexId("--min-size", next());
    } else if (arg == "--eps") {
      options.eps = ParseDouble("--eps", next());
      if (!(options.eps > 0.0) || !std::isfinite(options.eps)) {
        Usage("--eps expects a finite value > 0");
      }
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(nullptr);
    } else {
      Usage(("unknown flag " + arg).c_str());
    }
  }
  if (options.input.empty() && !options.demo) {
    Usage("one of --input or --demo is required");
  }
  return options;
}

std::unique_ptr<dsd::MotifOracle> MakeOracle(const std::string& name) {
  if (name == "edge") return std::make_unique<dsd::CliqueOracle>(2);
  if (name == "triangle") return std::make_unique<dsd::CliqueOracle>(3);
  for (int h = 2; h <= 9; ++h) {
    if (name == std::to_string(h) + "-clique") {
      return std::make_unique<dsd::CliqueOracle>(h);
    }
  }
  std::map<std::string, dsd::Pattern (*)()> patterns = {
      {"2-star", &dsd::Pattern::TwoStar},
      {"3-star", &dsd::Pattern::ThreeStar},
      {"c3-star", &dsd::Pattern::C3Star},
      {"diamond", &dsd::Pattern::Diamond},
      {"2-triangle", &dsd::Pattern::TwoTriangle},
      {"3-triangle", &dsd::Pattern::ThreeTriangle},
      {"basket", &dsd::Pattern::Basket},
  };
  auto it = patterns.find(name);
  if (it == patterns.end()) Usage(("unknown motif " + name).c_str());
  return std::make_unique<dsd::PatternOracle>(it->second());
}

}  // namespace

int main(int argc, char** argv) {
  Options options = ParseArgs(argc, argv);

  dsd::Graph graph;
  if (options.demo) {
    graph = dsd::gen::PlantedClique(500, 0.01, 15, 7);
    std::printf("# demo graph (planted K15 in G(500, 0.01))\n");
  } else {
    dsd::StatusOr<dsd::Graph> loaded = dsd::io::LoadEdgeList(options.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  }
  std::printf("# graph: n=%u m=%llu\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  std::unique_ptr<dsd::MotifOracle> oracle = MakeOracle(options.motif);
  for (VertexId q : options.query) {
    if (q >= graph.NumVertices()) {
      std::fprintf(stderr, "error: query vertex %u out of range\n", q);
      return 1;
    }
  }

  dsd::DensestResult result;
  if (options.algo == "exact") {
    result = dsd::Exact(graph, *oracle);
  } else if (options.algo == "core-exact") {
    result = dsd::CoreExact(graph, *oracle);
  } else if (options.algo == "peel") {
    result = dsd::PeelApp(graph, *oracle);
  } else if (options.algo == "inc-app") {
    result = dsd::IncApp(graph, *oracle);
  } else if (options.algo == "core-app") {
    result = dsd::CoreApp(graph, *oracle);
  } else if (options.algo == "stream") {
    result = dsd::StreamApp(graph, *oracle, options.eps);
  } else if (options.algo == "at-least") {
    if (options.min_size == 0) Usage("--algo at-least needs --min-size");
    result = dsd::DensestAtLeast(graph, *oracle, options.min_size);
  } else if (options.algo == "query") {
    if (options.query.empty()) Usage("--algo query needs --query");
    result = dsd::QueryDensest(graph, *oracle, options.query);
  } else {
    Usage(("unknown algorithm " + options.algo).c_str());
  }

  std::printf("motif      %s\n", oracle->Name().c_str());
  std::printf("algorithm  %s\n", options.algo.c_str());
  std::printf("density    %.6f\n", result.density);
  std::printf("instances  %llu\n",
              static_cast<unsigned long long>(result.instances));
  std::printf("vertices   %zu\n", result.vertices.size());
  std::printf("time       %.3f ms\n", result.stats.total_seconds * 1e3);
  if (options.verbose) {
    std::printf("members   ");
    for (VertexId v : result.vertices) std::printf(" %u", v);
    std::printf("\n");
    if (result.stats.kmax > 0) {
      std::printf("kmax       %u\n", result.stats.kmax);
    }
    if (result.stats.binary_search_iterations > 0) {
      std::printf("iterations %d\n", result.stats.binary_search_iterations);
    }
  }
  return 0;
}
